type t = Narrow | Wide

let equal a b =
  match a, b with
  | Narrow, Narrow | Wide, Wide -> true
  | Narrow, Wide | Wide, Narrow -> false

let to_string = function Narrow -> "narrow" | Wide -> "wide"

let pp ppf w = Format.pp_print_string ppf (to_string w)

let classify v = if Detector.narrow8 v then Narrow else Wide

let is_narrow v = Detector.narrow8 v

let is_narrow_bits ~bits v = Detector.narrow ~bits v

(* Smallest byte count that reproduces [v] under sign extension: byte [n-1]
   must carry the sign of everything above it. *)
let significant_bytes v =
  let sign_extend n =
    let low = v land ((1 lsl (8 * n)) - 1) in
    let sign_bit = (low lsr ((8 * n) - 1)) land 1 in
    if sign_bit = 1 then Value.mask32 (low lor (lnot ((1 lsl (8 * n)) - 1)))
    else low
  in
  let rec find n = if n = 4 then 4 else if sign_extend n = v then n else find (n + 1) in
  find 1

let significant_bytes_unsigned v =
  let rec find n =
    if n = 4 then 4
    else if v land lnot ((1 lsl (8 * n)) - 1) = 0 then n
    else find (n + 1)
  in
  find 1

let narrow_fraction values =
  match values with
  | [] -> 0.
  | _ ->
    let narrow = List.fold_left (fun acc v -> if is_narrow v then acc + 1 else acc) 0 values in
    float_of_int narrow /. float_of_int (List.length values)
