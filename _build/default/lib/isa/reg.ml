type t =
  | Eax | Ecx | Edx | Ebx | Esp | Ebp | Esi | Edi
  | Eflags
  | Eip
  | Tmp of int

let tmp_count = 8

let count = 10 + tmp_count

let to_index = function
  | Eax -> 0
  | Ecx -> 1
  | Edx -> 2
  | Ebx -> 3
  | Esp -> 4
  | Ebp -> 5
  | Esi -> 6
  | Edi -> 7
  | Eflags -> 8
  | Eip -> 9
  | Tmp i ->
    assert (i >= 0 && i < tmp_count);
    10 + i

let of_index = function
  | 0 -> Eax
  | 1 -> Ecx
  | 2 -> Edx
  | 3 -> Ebx
  | 4 -> Esp
  | 5 -> Ebp
  | 6 -> Esi
  | 7 -> Edi
  | 8 -> Eflags
  | 9 -> Eip
  | i when i >= 10 && i < 10 + tmp_count -> Tmp (i - 10)
  | i -> invalid_arg (Printf.sprintf "Reg.of_index: %d" i)

let equal a b = to_index a = to_index b

let compare a b = Int.compare (to_index a) (to_index b)

let to_string = function
  | Eax -> "eax"
  | Ecx -> "ecx"
  | Edx -> "edx"
  | Ebx -> "ebx"
  | Esp -> "esp"
  | Ebp -> "ebp"
  | Esi -> "esi"
  | Edi -> "edi"
  | Eflags -> "eflags"
  | Eip -> "eip"
  | Tmp i -> Printf.sprintf "tmp%d" i

let pp ppf r = Format.pp_print_string ppf (to_string r)

let gprs = [ Eax; Ecx; Edx; Ebx; Esp; Ebp; Esi; Edi ]
