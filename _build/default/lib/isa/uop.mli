(** Dynamic uops — the unit the frontend steers and the backends execute.

    A [Uop.t] is one dynamic instance from a trace. Besides the static
    fields (pc, opcode, register operands) it carries the {e ground truth}
    of the traced execution: concrete source values, the concrete result,
    the memory address and the branch direction. The simulator's predictors
    see none of this directly — they are trained at writeback, exactly like
    the hardware tables of the paper — but the execution model uses it to
    detect fatal width mispredictions and carry propagation. *)

type operand =
  | Reg of Reg.t
  | Imm of Value.t  (** immediate; its width is architecturally known *)

type t = {
  id : int;  (** dynamic sequence number, dense from 0 within a trace *)
  pc : Value.t;  (** synthetic PC; indexes the width/CP predictors *)
  op : Opcode.t;
  srcs : operand list;
  dst : Reg.t option;
  src_vals : Value.t list;  (** concrete source values, parallel to [srcs] *)
  result : Value.t;  (** concrete result; [0] when the uop produces none *)
  mem_addr : Value.t;  (** effective address for loads/stores, else [0] *)
  taken : bool;  (** branch direction, [false] for non-branches *)
  branch_mispredicted : bool;
      (** did the frontend branch predictor miss this dynamic branch —
          sampled by the trace generator from the profile's rate *)
  dl0_miss : bool;
      (** memory ground truth: this access misses the level-1 data cache.
          Carried in the trace so every simulator configuration sees the
          same memory behaviour. *)
  ul1_miss : bool;  (** and also misses the level-2 cache *)
}

val make :
  id:int ->
  pc:Value.t ->
  op:Opcode.t ->
  srcs:operand list ->
  dst:Reg.t option ->
  src_vals:Value.t list ->
  ?result:Value.t ->
  ?mem_addr:Value.t ->
  ?taken:bool ->
  ?branch_mispredicted:bool ->
  ?dl0_miss:bool ->
  ?ul1_miss:bool ->
  unit ->
  t
(** Smart constructor. When [result] is omitted it is computed with
    {!Semantics.eval} where possible (pure ALU ops), else [0].
    @raise Invalid_argument if [src_vals] and [srcs] lengths differ. *)

val has_dest : t -> bool

val writes_flags : t -> bool
val reads_flags : t -> bool

val result_width : t -> Width.t
(** Width of the ground-truth result value. *)

val src_widths : t -> Width.t list
(** Widths of the concrete source values. *)

val all_srcs_narrow : t -> bool
(** Ground truth for the 8-8-8 condition on the source side. *)

val is_888_bits : bits:int -> t -> bool
(** {!is_888} against an arbitrary helper datapath width. *)

val is_888 : t -> bool
(** Ground truth 8-8-8 eligibility: every source value narrow and, when the
    uop produces anything observable (a destination register or the flags),
    a narrow result too. *)

val is_8_32_32 : t -> bool
(** Ground truth CR-shape: two sources, exactly one wide, with a wide
    result (the 8-32-32 pattern of §3.5). For memory uops the "result" is
    the effective address — the AGU output of Fig 10 — not the loaded
    value. *)

val is_8_32_32_bits : bits:int -> t -> bool
(** {!is_8_32_32} against an arbitrary helper width. *)

val carry_not_propagated_bits : bits:int -> t -> bool
(** {!carry_not_propagated} against an arbitrary helper width. *)

val carry_not_propagated : t -> bool
(** For an {!is_8_32_32} additive uop: did the traced execution leave the
    upper 24 bits of the wide source unchanged (Fig 10)? [false] when the
    shape or opcode does not apply. *)

val pp : Format.formatter -> t -> unit

val pp_operand : Format.formatter -> operand -> unit
