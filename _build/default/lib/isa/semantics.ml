(* Concrete evaluation of uop opcodes over 32-bit values. The trace
   generator uses this to keep the value flow of a synthetic trace
   self-consistent, so that width detection, carry propagation and byte
   splitting observe genuine arithmetic rather than sampled labels. *)

let eval op (vals : Value.t list) : Value.t option =
  let v i = List.nth vals i in
  let binary f = match vals with _ :: _ :: _ -> Some (f (v 0) (v 1)) | _ -> None in
  let unary f = match vals with _ :: _ -> Some (f (v 0)) | [] -> None in
  match (op : Opcode.t) with
  | Add | Lea -> binary Value.add
  | Sub | Cmp -> binary Value.sub
  | And -> binary (fun a b -> a land b)
  | Or -> binary (fun a b -> a lor b)
  | Xor -> binary (fun a b -> Value.mask32 (a lxor b))
  | Shl -> binary (fun a b -> Value.mask32 (a lsl (b land 31)))
  | Shr -> binary (fun a b -> a lsr (b land 31))
  | Mov | Copy -> unary (fun a -> a)
  | Mul -> binary (fun a b -> Value.mask32 (a * b))
  | Div -> binary (fun a b -> if b = 0 then 0 else a / b)
  | Load | Store | Branch_cond | Branch_uncond | Fp_add | Fp_mul | Fp_div | Nop ->
    None
