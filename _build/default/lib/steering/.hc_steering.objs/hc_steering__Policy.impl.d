lib/steering/policy.ml: Hc_isa Hc_predictors Hc_sim List
