lib/steering/policy.mli: Hc_isa Hc_sim
