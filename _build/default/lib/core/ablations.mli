(** Ablations of the design decisions DESIGN.md calls out.

    Each ablation perturbs exactly one mechanism and reports the average
    SPEC Int speedup of the full technique stack over the monolithic
    baseline, so the contribution of that mechanism is isolated. These go
    beyond the paper's own evaluation; the helper-width sweep realizes the
    wider-helper extension its conclusion proposes. *)

type row = {
  variant : string;  (** e.g. "width=16" *)
  speedup_pct : float;  (** avg SPEC speedup of +IR over baseline *)
  steered_pct : float;
  copy_pct : float;
  fatal_pct : float;
}

type t = {
  id : string;
  title : string;
  what : string;  (** what is being isolated *)
  run : length:int -> row list;
}

val all : t list
(** helper-width sweep, clock-ratio, confidence gate, oracle width
    knowledge, copy latency, flush penalty, structural substrates,
    register-file pressure. *)

val find : string -> t
(** @raise Not_found for an unknown id. *)

val render : row list -> string
(** Aligned table of the rows. *)
