lib/core/ablations.mli:
