lib/core/runs.ml: Hashtbl Hc_sim Hc_steering Hc_trace
