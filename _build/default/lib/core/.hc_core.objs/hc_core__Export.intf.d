lib/core/export.mli: Runs
