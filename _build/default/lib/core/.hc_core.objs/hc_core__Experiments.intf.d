lib/core/experiments.mli: Runs
