lib/core/experiments.ml: Float Hc_power Hc_sim Hc_stats Hc_steering Hc_trace List Printf Runs
