lib/core/runs.mli: Hc_sim Hc_trace
