lib/core/export.ml: Experiments Filename Fun Hc_sim Hc_stats List Printf Runs String Sys
