lib/core/ablations.ml: Hc_isa Hc_sim Hc_stats Hc_steering Hc_trace List Printf
