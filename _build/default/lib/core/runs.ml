module Profile = Hc_trace.Profile
module Generator = Hc_trace.Generator
module Trace = Hc_trace.Trace
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics

type t = {
  len : int;
  traces : (string, Trace.t) Hashtbl.t;
  runs : (string * string, Metrics.t) Hashtbl.t;
}

let create ?(length = 30_000) () =
  { len = length; traces = Hashtbl.create 32; runs = Hashtbl.create 64 }

let length t = t.len

let trace t (p : Profile.t) =
  match Hashtbl.find_opt t.traces p.Profile.name with
  | Some tr -> tr
  | None ->
    let tr = Generator.generate_sliced ~length:t.len p in
    Hashtbl.add t.traces p.Profile.name tr;
    tr

let metrics t ~scheme (p : Profile.t) =
  let key = (scheme, p.Profile.name) in
  match Hashtbl.find_opt t.runs key with
  | Some m -> m
  | None ->
    let cfg = Config.with_scheme Config.default (Config.find_scheme scheme) in
    let m =
      Pipeline.run ~cfg ~decide:Hc_steering.Policy.decide ~scheme_name:scheme
        (trace t p)
    in
    Hashtbl.add t.runs key m;
    m

let speedup_pct t ~scheme p =
  let baseline = metrics t ~scheme:"baseline" p in
  Metrics.speedup_pct ~baseline (metrics t ~scheme p)

let spec_profiles = Profile.spec_int
