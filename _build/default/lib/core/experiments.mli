(** One reproduction per table/figure of the paper's evaluation.

    Every experiment renders the same rows/series the paper reports and is
    also exposed as structured data for the test suite. Aggregate numbers
    (averages, the claims quoted in the paper's prose) come back in
    [headline] records so EXPERIMENTS.md can quote paper-vs-measured pairs
    mechanically. *)

type headline = {
  label : string;  (** what the number is, e.g. "avg speedup (%)" *)
  paper : float;  (** the value the paper reports *)
  measured : float;  (** what this reproduction measures *)
}

type t = {
  id : string;  (** "fig6", "tab2", … *)
  title : string;
  paper_claim : string;  (** the sentence/number the paper states *)
  run : Runs.t -> string * headline list;
      (** render the full table and return the headline comparisons *)
}

val all : t list
(** Every experiment, in paper order: fig1, opmix, fig5, fig6, fig7, fig8,
    fig9, fig11, fig12, fig13, cp, ir, related (the §4 comparator), tab2,
    fig14. *)

val find : string -> t
(** @raise Not_found for an unknown id. *)

(* Structured accessors used by the integration tests. *)

val fig1_rows : Runs.t -> (string * float) list
(** benchmark → %% of ALU register operands that are narrow-dependent. *)

val fig5_rows : Runs.t -> (string * float * float * float) list
(** benchmark → (correct, fatal, non-fatal) percentages under 8_8_8. *)

val fig6_rows : Runs.t -> (string * float) list
(** benchmark → 8_8_8 speedup %% over baseline. *)

val fig7_rows : Runs.t -> (string * float * float) list
(** benchmark → (steered %%, copies %%) under 8_8_8. *)

val copies_by_scheme : Runs.t -> string -> (string * float) list
(** benchmark → copy %% under the given scheme (Figs 8 and 9). *)

val fig11_rows : Runs.t -> (string * float * float) list
(** benchmark → (arith %%, load %%) carry-not-propagated potential. *)

val fig12_rows : Runs.t -> (string * float * float) list
(** benchmark → (8_8_8 speedup, +CR-stack speedup). *)

val fig13_rows : Runs.t -> (string * float) list
(** benchmark → mean producer–consumer distance. *)

val fig14_category_rows :
  ?apps_per_category:int -> ?length:int -> unit -> (string * float) list
(** category → average +IR speedup %% over baseline, on the Table-2 suite
    (optionally subsampled to [apps_per_category] apps per category for
    quick runs). *)

val fig14_curve :
  ?apps_per_category:int -> ?length:int -> unit -> float list
(** The Fig 14 S-curve: per-app speedup factors (baseline = 1.0), sorted
    ascending, over the same suite. *)
