module Metrics = Hc_sim.Metrics
module Counter = Hc_stats.Counter

(* Per-event energies in normalized units. Width scaling: the 8-bit
   backend's array structures (register file, ALU, AGU, scheduler CAM)
   cost roughly a quarter of the 32-bit ones — the paper's linear-in-width
   area argument (§2.1) — while absolute-time structures (caches, main
   memory) are shared and identical. *)
let table =
  [
    ("dispatch_wide", 1.0);
    ("dispatch_narrow", 1.0);  (* rename/steer work is frontend-side *)
    ("split_dispatched", 1.6);  (* cracking into four lanes costs decode *)
    ("issue_wide", 1.6);
    ("issue_narrow", 0.7);
    ("regread_wide", 1.0);
    ("regread_narrow", 0.25);
    ("regwrite_wide", 1.2);
    ("regwrite_narrow", 0.3);
    ("alu_wide", 4.0);
    ("alu_narrow", 1.0);
    ("agu_wide", 2.0);
    ("agu_narrow", 0.5);
    ("mul_wide", 12.0);
    ("fpu_wide", 16.0);
    ("mem_dl0", 8.0);
    ("mem_ul1", 30.0);
    ("mem_main", 180.0);
    ("copy_dispatched", 0.5);
    ("copy_completed", 1.5);  (* inter-cluster wire hop *)
    ("lr_replicated", 0.3);  (* the extra 8-bit register-file write *)
    ("wpred_lookup", 0.12);
    ("wpred_update", 0.12);
    ("width_flush", 40.0);  (* squash, rollback and refetch churn *)
    ("cycle_wide", 6.0);  (* wide-cluster clock tree, per slow cycle *)
    ("cycle_narrow", 1.1);  (* 8-bit cluster clock tree, per fast tick *)
    ("committed", 0.4);
  ]

let event_energy name =
  match List.assoc_opt name table with Some e -> e | None -> 0.

type report = {
  total : float;
  breakdown : (string * float) list;
}

let is_narrow_structure name =
  let suffix = "_narrow" in
  let nl = String.length name and sl = String.length suffix in
  nl >= sl && String.sub name (nl - sl) sl = suffix

let estimate ?(narrow_bits = 8) (m : Metrics.t) =
  (* array structures scale roughly linearly with datapath width (Â§2.1);
     the table prices an 8-bit helper, so a wider one costs
     proportionally more *)
  let width_scale = float_of_int narrow_bits /. 8. in
  let breakdown =
    List.filter_map
      (fun (name, unit_energy) ->
        let n = Counter.get m.Metrics.counters name in
        let unit_energy =
          if is_narrow_structure name then unit_energy *. width_scale
          else unit_energy
        in
        if n = 0 then None else Some (name, float_of_int n *. unit_energy))
      table
  in
  let breakdown =
    List.sort (fun (_, a) (_, b) -> Float.compare b a) breakdown
  in
  let total = List.fold_left (fun acc (_, e) -> acc +. e) 0. breakdown in
  { total; breakdown }

let energy_delay2 ?narrow_bits (m : Metrics.t) =
  let delay = Metrics.cycles m in
  (estimate ?narrow_bits m).total *. delay *. delay

let ed2_improvement_pct ?narrow_bits ~baseline m =
  100. *. ((energy_delay2 baseline /. energy_delay2 ?narrow_bits m) -. 1.)
