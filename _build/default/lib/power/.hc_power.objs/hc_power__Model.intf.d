lib/power/model.mli: Hc_sim
