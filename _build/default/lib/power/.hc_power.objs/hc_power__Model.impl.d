lib/power/model.ml: Float Hc_sim Hc_stats List String
