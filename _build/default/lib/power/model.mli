(** Wattch-like activity-based power model (§3.1, §3.7).

    The paper uses an in-house wattch-style simulator "modified to take
    into account the helper cluster power, including the 8-bit datapath and
    the clock network as well as the width predictors". This model does the
    same thing at the same abstraction level: every activity counter the
    pipeline records (issues, register file accesses, functional-unit
    operations, cache accesses, copies, predictor traffic, clock ticks) is
    multiplied by a per-event energy. Event energies scale with datapath
    width — the 8-bit backend's register file and ALU cost roughly a
    quarter of their 32-bit counterparts, which is the paper's
    area/complexity scaling argument (§2.1).

    Absolute joules are arbitrary (units are normalized "energy units");
    only ratios are meaningful, exactly as in the paper's energy-delay²
    comparison. *)

type report = {
  total : float;  (** total energy in normalized units *)
  breakdown : (string * float) list;  (** per-structure, descending *)
}

val estimate : ?narrow_bits:int -> Hc_sim.Metrics.t -> report
(** Energy of one finished run, from its activity counters. [narrow_bits]
    (default 8) scales the helper-cluster structure energies linearly for
    wider-helper configurations. *)

val energy_delay2 : ?narrow_bits:int -> Hc_sim.Metrics.t -> float
(** E·D² for one run (delay in wide-cluster cycles). *)

val ed2_improvement_pct :
  ?narrow_bits:int -> baseline:Hc_sim.Metrics.t -> Hc_sim.Metrics.t -> float
(** §3.7: how much more energy-delay² efficient a run is than the
    baseline, in percent (positive = better than baseline). *)

val event_energy : string -> float
(** The per-event energy assigned to a counter name (0. for counters the
    model does not price). Exposed for tests and ablations. *)
