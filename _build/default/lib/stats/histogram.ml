type t = {
  cells : (int, int ref) Hashtbl.t;
  mutable total : int;
}

let create () = { cells = Hashtbl.create 32; total = 0 }

let observe_n t k n =
  ( match Hashtbl.find_opt t.cells k with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t.cells k (ref n) );
  t.total <- t.total + n

let observe t k = observe_n t k 1

let count t k = match Hashtbl.find_opt t.cells k with Some r -> !r | None -> 0

let total t = t.total

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.cells [] |> List.sort Int.compare

let fold f t init =
  List.fold_left (fun acc k -> f k (count t k) acc) init (keys t)

let mean t =
  if t.total = 0 then 0.
  else
    let sum = fold (fun k c acc -> acc + (k * c)) t 0 in
    float_of_int sum /. float_of_int t.total

let percentile t p =
  if t.total = 0 then invalid_arg "Histogram.percentile: empty";
  if p < 0. || p > 1. then invalid_arg "Histogram.percentile: p out of [0,1]";
  let target = int_of_float (ceil (p *. float_of_int t.total)) in
  let rec scan acc = function
    | [] -> invalid_arg "Histogram.percentile: unreachable"
    | [ k ] -> k
    | k :: rest -> if acc + count t k >= target then k else scan (acc + count t k) rest
  in
  scan 0 (keys t)

let fraction_le t k =
  if t.total = 0 then 0.
  else
    let le = fold (fun key c acc -> if key <= k then acc + c else acc) t 0 in
    float_of_int le /. float_of_int t.total

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter (fun k -> Format.fprintf ppf "%6d: %d@," k (count t k)) (keys t);
  Format.pp_close_box ppf ()
