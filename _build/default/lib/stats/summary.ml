type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min_v = infinity; max_v = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let n t = t.n

let mean t = if t.n = 0 then 0. else t.mean

let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int t.n

let stddev t = sqrt (variance t)

let min_value t =
  if t.n = 0 then invalid_arg "Summary.min_value: empty";
  t.min_v

let max_value t =
  if t.n = 0 then invalid_arg "Summary.max_value: empty";
  t.max_v

let arithmetic_mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geometric_mean = function
  | [] -> invalid_arg "Summary.geometric_mean: empty"
  | xs ->
    if List.exists (fun x -> x <= 0.) xs then
      invalid_arg "Summary.geometric_mean: non-positive element";
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0. xs in
    exp (log_sum /. float_of_int (List.length xs))

let speedup ~baseline x =
  if baseline <= 0. then invalid_arg "Summary.speedup: non-positive baseline";
  (x /. baseline) -. 1.

let pct f = 100. *. f
