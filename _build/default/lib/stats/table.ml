type align = Left | Right

type row = Cells of string list | Rule

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list;  (* reversed *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Table.create: aligns length mismatch";
      a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) headers
  in
  { headers; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: width mismatch";
  t.rows <- Cells cells :: t.rows

let add_float_row t label xs =
  add_row t (label :: List.map (Printf.sprintf "%.2f") xs)

let add_separator t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let cell_rows = List.filter_map (function Cells c -> Some c | Rule -> None) rows in
  let widths =
    List.fold_left
      (fun ws cells -> List.map2 (fun w c -> max w (String.length c)) ws cells)
      (List.map String.length t.headers)
      cell_rows
  in
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let render_cells cells =
    let padded =
      List.map2 (fun (w, a) c -> pad a w c)
        (List.combine widths t.aligns)
        cells
    in
    String.concat "  " padded
  in
  let rule =
    String.concat "--" (List.map (fun w -> String.make w '-') widths)
  in
  let body =
    List.map (function Cells c -> render_cells c | Rule -> rule) rows
  in
  String.concat "\n" (render_cells t.headers :: rule :: body)

let print t =
  print_string (render t);
  print_newline ()
