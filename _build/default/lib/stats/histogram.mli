(** Integer-keyed histograms.

    Used for distance distributions (Fig 13), issue-queue occupancies and
    value-width profiles. *)

type t

val create : unit -> t

val observe : t -> int -> unit
(** [observe t k] adds one sample at key [k]. *)

val observe_n : t -> int -> int -> unit
(** [observe_n t k n] adds [n] samples at key [k]. *)

val count : t -> int -> int
(** Samples recorded at exactly key [k]. *)

val total : t -> int
(** Total number of samples. *)

val mean : t -> float
(** Mean key, weighted by counts; [0.] when empty. *)

val percentile : t -> float -> int
(** [percentile t p] with [p] in [0,1] is the smallest key [k] such that at
    least [p * total] samples have key [<= k].
    @raise Invalid_argument on an empty histogram or [p] outside [0,1]. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f t init] folds [f key count] over keys in increasing order. *)

val keys : t -> int list
(** Keys with nonzero counts, increasing. *)

val fraction_le : t -> int -> float
(** [fraction_le t k] is the fraction of samples with key [<= k]. *)

val pp : Format.formatter -> t -> unit
