(** Streaming summaries of float series (Welford online moments) plus
    aggregate helpers used in experiment reports. *)

type t
(** Mutable accumulator of a float series. *)

val create : unit -> t

val add : t -> float -> unit

val n : t -> int

val mean : t -> float
(** [0.] when empty. *)

val variance : t -> float
(** Population variance; [0.] when fewer than two samples. *)

val stddev : t -> float

val min_value : t -> float
(** @raise Invalid_argument when empty. *)

val max_value : t -> float
(** @raise Invalid_argument when empty. *)

val arithmetic_mean : float list -> float
(** [0.] on the empty list. *)

val geometric_mean : float list -> float
(** Geometric mean of positive values.
    @raise Invalid_argument on empty input or non-positive elements. *)

val speedup : baseline:float -> float -> float
(** [speedup ~baseline x] is the relative improvement [(x /. baseline) - 1.]
    of a rate metric (e.g. IPC) over the baseline.
    @raise Invalid_argument when [baseline <= 0.]. *)

val pct : float -> float
(** [pct f] scales a fraction to percent. *)
