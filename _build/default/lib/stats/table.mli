(** ASCII table rendering for the bench harness and experiment reports.

    The bench binary regenerates each paper figure as a table of rows; this
    module keeps that output aligned and uniform. *)

type align = Left | Right

type t
(** A table under construction: a header and accumulated rows. *)

val create : ?aligns:align list -> string list -> t
(** [create ?aligns headers] starts a table. [aligns] defaults to [Left]
    for the first column and [Right] for the rest — the common
    "benchmark name then numbers" shape. When provided, its length must
    equal the header length. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the row width differs from the header. *)

val add_float_row : t -> string -> float list -> unit
(** [add_float_row t label xs] adds [label] followed by each float rendered
    with two decimals. *)

val add_separator : t -> unit
(** Inserts a horizontal rule before the next row. *)

val render : t -> string
(** Fully aligned rendering, including a rule under the header. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
