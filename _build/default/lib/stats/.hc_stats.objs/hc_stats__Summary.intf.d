lib/stats/summary.mli:
