lib/stats/table.mli:
