(** Materialized uop traces.

    A trace is the unit fed to the simulator: a named, finite sequence of
    dynamic uops with concrete values (the ground truth produced by
    {!Generator}). *)

type t = {
  name : string;
  profile : Profile.t;  (** the profile the trace was generated from *)
  uops : Hc_isa.Uop.t array;
}

val length : t -> int

val get : t -> int -> Hc_isa.Uop.t
(** [get t i] is the [i]-th dynamic uop. @raise Invalid_argument when out
    of bounds. *)

val iter : (Hc_isa.Uop.t -> unit) -> t -> unit

val fold : ('a -> Hc_isa.Uop.t -> 'a) -> 'a -> t -> 'a

val sub : t -> pos:int -> len:int -> t
(** Contiguous sub-trace (uop ids are preserved, not renumbered). *)

val narrow_result_fraction : t -> float
(** Fraction of destination-producing uops whose ground-truth result is
    narrow — the headline statistic behind Fig 1. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line description: name, length, mix digest. *)
