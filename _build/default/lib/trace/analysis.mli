(** Trace-level measurements.

    Everything here is computed by walking a finished trace — no simulator
    involved. These are the paper's workload-characterization artifacts:
    Fig 1 (narrow data-width dependence), the §1 operand-width mix, Fig 11
    (carry-not-propagated potential for the CR scheme) and Fig 13
    (producer–consumer distance, the CP feasibility argument). *)

val narrow_dependence_pct : Trace.t -> float
(** Percentage (0-100) of regular integer-ALU register source operands
    whose producer value is narrow - the paper's "narrow data-width
    dependent" consumers (Fig 1). Flags reads, memory address bases and FP
    operands fall outside the figure's scope. *)

type operand_mix = {
  one_narrow : float;
      (** %% of regular ALU uops with exactly one narrow source (§1: 39.4%) *)
  two_narrow_wide_result : float;
      (** %% with two narrow sources and a wide result (§1: 3.3%) *)
  two_narrow_narrow_result : float;
      (** %% with two narrow sources and a narrow result (§1: 43.5%) *)
}

val operand_mix : Trace.t -> operand_mix
(** Measured over two-source integer-ALU uops ("regular ALU instructions"). *)

val carry_not_propagated_pct : Trace.t -> arith:bool -> float
(** Fig 11: among carry-eligible uops of the 8-32-32 shape (two sources,
    one narrow and one wide, wide result), the percentage whose execution
    leaves the upper 24 bits of the wide source intact. [arith:true]
    selects add/sub-class uops, [arith:false] loads. Returns 0 when no uop
    qualifies. *)

val distance_histogram : Trace.t -> Hc_stats.Histogram.t
(** Producer–consumer register distances in dynamic uops (Fig 13): for
    every value-producing uop, the distance to the {e first} consumer of
    that value — the window copy prefetching has to work with. Values never
    consumed, and flags dependences, are skipped. *)

val mean_distance : Trace.t -> float
(** Mean of {!distance_histogram}; the Fig 13 bar for one application. *)

val mix_digest : Trace.t -> (string * float) list
(** Measured dynamic opcode-class mix, as (class, fraction) pairs — a
    sanity check that the generator honours the profile. Classes:
    "load", "store", "branch", "mul_div", "fp", "alu". *)
