type entry = {
  category : Profile.category;
  count : int;
  description : string;
}

let table2 =
  [
    { category = Profile.Encoder; count = 62; description = "Audio/video encode" };
    { category = Profile.Spec_fp; count = 41; description = "Spec FP's" };
    { category = Profile.Kernels; count = 52; description = "VectorAdd, FIRs" };
    { category = Profile.Multimedia; count = 85; description = "WMedia, photoshop" };
    { category = Profile.Office; count = 75; description = "Excel, word, ppt" };
    { category = Profile.Productivity; count = 45; description = "Internet content" };
    { category = Profile.Workstation; count = 49; description = "VectorAdd, FIRs" };
  ]

let suite_size = List.fold_left (fun acc e -> acc + e.count) 0 table2

let clamp lo hi v = Float.max lo (Float.min hi v)

let scale rng v = v *. (0.75 +. (0.5 *. Rng.float rng))

let jitter rng (a : Profile.t) =
  let s v = clamp 0.0 0.95 (scale rng v) in
  let p =
    { a with
      Profile.f_load = s a.Profile.f_load;
      f_store = s a.f_store;
      f_cond_branch = s a.f_cond_branch;
      f_uncond_branch = s a.f_uncond_branch;
      f_mul = s a.f_mul;
      f_div = s a.f_div;
      f_fp = s a.f_fp;
      f_shift = s a.f_shift;
      p_narrow_load = s a.p_narrow_load;
      p_narrow_imm = s a.p_narrow_imm;
      p_narrow_chain = s a.p_narrow_chain;
      p_extra_operand = s a.p_extra_operand;
      p_mixed_width = s a.p_mixed_width;
      mixed_flip = s a.mixed_flip;
      dep_distance_mean = Float.max 1.2 (scale rng a.dep_distance_mean);
      p_second_src_imm = s a.p_second_src_imm;
      p_narrow_index = s a.p_narrow_index;
      p_carry_local_load = s a.p_carry_local_load;
      p_carry_local_arith = s a.p_carry_local_arith;
      p_dl0_miss = s a.p_dl0_miss;
      p_ul1_miss = s a.p_ul1_miss;
      p_taken = clamp 0.05 0.95 (scale rng a.p_taken);
      p_mispredict = s a.p_mispredict;
      loop_back_mean = Float.max 2. (scale rng a.loop_back_mean);
      static_size = max 200 (int_of_float (scale rng (float_of_int a.static_size)));
    }
  in
  (* jitter must never produce an invalid profile; renormalize the mix if
     the scaled fractions collide *)
  let mix =
    p.f_load +. p.f_store +. p.f_cond_branch +. p.f_uncond_branch +. p.f_mul
    +. p.f_div +. p.f_fp +. p.f_shift
  in
  if mix < 0.9 then p
  else
    let k = 0.85 /. mix in
    { p with
      f_load = p.f_load *. k; f_store = p.f_store *. k;
      f_cond_branch = p.f_cond_branch *. k; f_uncond_branch = p.f_uncond_branch *. k;
      f_mul = p.f_mul *. k; f_div = p.f_div *. k; f_fp = p.f_fp *. k;
      f_shift = p.f_shift *. k }

let category_apps category =
  let entry = List.find (fun e -> e.category = category) table2 in
  let arch = Profile.archetype category in
  let rng = Rng.create (Int64.of_int (0x7AB2 + Hashtbl.hash (Profile.category_to_string category))) in
  List.init entry.count (fun i ->
      let app_rng = Rng.split rng in
      let p = jitter app_rng arch in
      let name = Printf.sprintf "%s-%03d" (Profile.category_to_string category) (i + 1) in
      { p with Profile.name; seed = Rng.next_int64 app_rng })

let suite () = List.concat_map (fun e -> category_apps e.category) table2
