type t = { mutable state : int64 }

let create seed = { state = seed }

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64 finalizer (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (next_int64 t)

let copy t = { state = t.state }

let float t =
  (* 53 high bits to a double in [0,1) *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let bool t p = float t < p

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection-free modulo is fine for simulation purposes; keep 62 bits so
     the Int64->int conversion stays non-negative on 64-bit OCaml *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod n

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let geometric t mean =
  if mean < 1. then invalid_arg "Rng.geometric: mean must be >= 1";
  if mean = 1. then 1
  else
    let p = 1. /. mean in
    let u = float t in
    let k = 1 + int_of_float (log1p (-.u) /. log1p (-.p)) in
    max 1 k

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. choices in
  if total <= 0. then invalid_arg "Rng.weighted: non-positive weight sum";
  let target = float t *. total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.weighted: unreachable"
    | [ (_, x) ] -> x
    | (w, x) :: rest -> if acc +. w > target then x else pick (acc +. w) rest
  in
  pick 0. choices
