(** The Table-2 application suite.

    The paper's final study (§3.8, Fig 14) runs 7 workload categories
    totalling 409 traces (the table's counts; the text's "412 apps"
    headline does not match its own table — we follow the table and note
    the discrepancy in EXPERIMENTS.md). Each application is a jittered
    instance of its category archetype with its own seed, so the suite is
    deterministic yet no two applications are identical. *)

type entry = {
  category : Profile.category;
  count : int;
  description : string;
}

val table2 : entry list
(** The seven rows of Table 2 (enc 62, sfp 41, kernels 52, mm 85,
    office 75, prod 45, ws 49). *)

val suite_size : int
(** Total application count (409). *)

val category_apps : Profile.category -> Profile.t list
(** The applications of one category, named ["<cat>-001"…]. *)

val suite : unit -> Profile.t list
(** All applications in category order. *)

val jitter : Rng.t -> Profile.t -> Profile.t
(** One derived application: every behavioural knob of the archetype is
    scaled by a uniform factor in [0.75, 1.25] (clamped to stay a valid
    profile). Exposed for property tests. *)
