(** Deterministic pseudo-random numbers (splitmix64).

    Every synthetic workload is generated from an explicit seed so traces —
    and therefore every number in EXPERIMENTS.md — are bit-reproducible
    across runs and machines. The global [Random] state is never touched. *)

type t
(** A mutable generator. *)

val create : int64 -> t
(** [create seed] — equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each static instruction / application its own stream. *)

val copy : t -> t
(** Duplicate the current state without advancing it. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is a Bernoulli draw with probability [p]. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n-1]. @raise Invalid_argument if [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val geometric : t -> float -> int
(** [geometric t mean] draws from a geometric distribution with the given
    mean, returning a value [>= 1]. @raise Invalid_argument if
    [mean < 1.]. *)

val choice : t -> 'a array -> 'a
(** Uniform pick. @raise Invalid_argument on an empty array. *)

val weighted : t -> (float * 'a) list -> 'a
(** [weighted t choices] draws proportionally to the non-negative weights.
    @raise Invalid_argument when the weight sum is not positive. *)
