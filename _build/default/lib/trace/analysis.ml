module Opcode = Hc_isa.Opcode
module Reg = Hc_isa.Reg
module Uop = Hc_isa.Uop
module Width = Hc_isa.Width
module Histogram = Hc_stats.Histogram

let reg_source_values ?(include_flags = false) (u : Uop.t) =
  List.filter_map
    (fun (src, v) ->
      match src with
      | Uop.Reg r when (not (Reg.equal r Reg.Eflags)) || include_flags -> Some v
      | Uop.Reg _ | Uop.Imm _ -> None)
    (List.combine u.Uop.srcs u.Uop.src_vals)

(* Fig 1 counts the register operands of regular (integer-ALU) uops: the
   paper pairs the figure with its ALU operand-width breakdown (39.4% one
   narrow / 3.3% + 43.5% two narrow), and the levels only line up under
   that reading. Address bases of loads/stores, flags reads and FP operands
   are outside the figure's scope. *)
let narrow_dependence_pct t =
  let total = ref 0 and narrow = ref 0 in
  Trace.iter
    (fun u ->
      if Opcode.exec_class u.Uop.op = Opcode.Int_alu
         && u.Uop.op <> Opcode.Copy && u.Uop.op <> Opcode.Nop then
        List.iter
          (fun v ->
            incr total;
            if Width.is_narrow v then incr narrow)
          (reg_source_values u))
    t;
  if !total = 0 then 0. else 100. *. float_of_int !narrow /. float_of_int !total

type operand_mix = {
  one_narrow : float;
  two_narrow_wide_result : float;
  two_narrow_narrow_result : float;
}

let operand_mix t =
  let total = ref 0 and one = ref 0 and two_wide = ref 0 and two_narrow = ref 0 in
  Trace.iter
    (fun u ->
      match Opcode.exec_class u.Uop.op, u.Uop.src_vals with
      | Opcode.Int_alu, [ a; b ] when u.Uop.op <> Opcode.Copy && u.Uop.op <> Opcode.Nop ->
        incr total;
        let na = Width.is_narrow a and nb = Width.is_narrow b in
        if na && nb then
          if Width.is_narrow u.Uop.result then incr two_narrow else incr two_wide
        else if na || nb then incr one
      | (Opcode.Int_alu | Opcode.Int_mul | Opcode.Mem | Opcode.Ctrl | Opcode.Fp), _ ->
        ())
    t;
  let pct c = if !total = 0 then 0. else 100. *. float_of_int c /. float_of_int !total in
  {
    one_narrow = pct !one;
    two_narrow_wide_result = pct !two_wide;
    two_narrow_narrow_result = pct !two_narrow;
  }

let carry_not_propagated_pct t ~arith =
  let wanted (u : Uop.t) =
    if arith then
      Opcode.carry_eligible u.Uop.op && not (Opcode.is_memory u.Uop.op)
    else u.Uop.op = Opcode.Load
  in
  let total = ref 0 and local = ref 0 in
  Trace.iter
    (fun u ->
      if wanted u && Uop.is_8_32_32 u && Opcode.carry_eligible u.Uop.op then begin
        incr total;
        if Uop.carry_not_propagated u then incr local
      end)
    t;
  if !total = 0 then 0. else 100. *. float_of_int !local /. float_of_int !total

(* Producer -> first consumer: the distance that matters for copy
   prefetching (§3.6) is how long a freshly produced value waits before its
   first use. Later re-reads of long-lived registers (stack/frame pointers)
   are irrelevant to the prefetch window and would swamp the tail. *)
let distance_histogram t =
  let h = Histogram.create () in
  let pending = Array.make Reg.count (-1) in
  Trace.iter
    (fun u ->
      List.iter
        (fun src ->
          match src with
          | Uop.Reg r when not (Reg.equal r Reg.Eflags) ->
            let i = Reg.to_index r in
            if pending.(i) >= 0 then begin
              Histogram.observe h (u.Uop.id - pending.(i));
              pending.(i) <- -1
            end
          | Uop.Reg _ | Uop.Imm _ -> ())
        u.Uop.srcs;
      match u.Uop.dst with
      | Some d -> pending.(Reg.to_index d) <- u.Uop.id
      | None -> ())
    t;
  h

let mean_distance t = Histogram.mean (distance_histogram t)

let mix_digest t =
  let n = float_of_int (max 1 (Trace.length t)) in
  let count pred = float_of_int (Trace.fold (fun acc u -> if pred u then acc + 1 else acc) 0 t) /. n in
  [
    ("load", count (fun u -> u.Uop.op = Opcode.Load));
    ("store", count (fun u -> u.Uop.op = Opcode.Store));
    ("branch", count (fun u -> Opcode.is_branch u.Uop.op));
    ("mul_div", count (fun u -> u.Uop.op = Opcode.Mul || u.Uop.op = Opcode.Div));
    ("fp", count (fun u -> Opcode.is_fp u.Uop.op));
    ("alu", count (fun u ->
         Opcode.exec_class u.Uop.op = Opcode.Int_alu && not (Opcode.is_branch u.Uop.op)));
  ]
