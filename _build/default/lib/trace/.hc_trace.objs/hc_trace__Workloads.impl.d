lib/trace/workloads.ml: Float Hashtbl Int64 List Printf Profile Rng
