lib/trace/analysis.mli: Hc_stats Trace
