lib/trace/trace.mli: Format Hc_isa Profile
