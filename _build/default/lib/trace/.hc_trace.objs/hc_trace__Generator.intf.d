lib/trace/generator.mli: Hc_isa Profile Trace
