lib/trace/trace_io.ml: Array Fun Hc_isa List Printf Profile String Trace
