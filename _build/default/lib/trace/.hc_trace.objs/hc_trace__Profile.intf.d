lib/trace/profile.mli: Format
