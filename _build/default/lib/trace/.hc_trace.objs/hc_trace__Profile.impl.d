lib/trace/profile.ml: Format Hc_stats List Printf
