lib/trace/analysis.ml: Array Hc_isa Hc_stats List Trace
