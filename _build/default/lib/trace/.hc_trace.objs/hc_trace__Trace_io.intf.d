lib/trace/trace_io.mli: Profile Trace
