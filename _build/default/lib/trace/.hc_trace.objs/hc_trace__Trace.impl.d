lib/trace/trace.ml: Array Format Hc_isa Profile
