lib/trace/generator.ml: Array Float Hc_isa List Profile Rng Trace
