lib/trace/workloads.mli: Profile Rng
