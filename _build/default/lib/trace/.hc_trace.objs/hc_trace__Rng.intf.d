lib/trace/rng.mli:
