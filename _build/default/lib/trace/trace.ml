module Uop = Hc_isa.Uop
module Width = Hc_isa.Width

type t = {
  name : string;
  profile : Profile.t;
  uops : Uop.t array;
}

let length t = Array.length t.uops

let get t i =
  if i < 0 || i >= Array.length t.uops then invalid_arg "Trace.get: out of bounds";
  t.uops.(i)

let iter f t = Array.iter f t.uops

let fold f init t = Array.fold_left f init t.uops

let sub t ~pos ~len = { t with uops = Array.sub t.uops pos len }

let narrow_result_fraction t =
  let producing = ref 0 and narrow = ref 0 in
  iter
    (fun u ->
      if Uop.has_dest u then begin
        incr producing;
        if Width.is_narrow u.Uop.result then incr narrow
      end)
    t;
  if !producing = 0 then 0. else float_of_int !narrow /. float_of_int !producing

let pp_summary ppf t =
  Format.fprintf ppf "%s: %d uops, %.1f%% narrow results" t.name (length t)
    (100. *. narrow_result_fraction t)
