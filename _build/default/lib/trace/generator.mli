(** Synthetic trace generation.

    Expands a {!Profile.t} into a stream of concrete uops. The generator
    maintains a synthetic {e static program} (whose size and loop structure
    come from the profile) and walks it dynamically, tracking an
    architectural register file of concrete 32-bit values. Consequences:

    - dependences are real: a consumer reads the value its producer wrote;
    - widths are real: ALU results come from {!Hc_isa.Semantics.eval}, so
      a narrow+narrow addition occasionally overflows into width 9 — the
      genuine fatal-misprediction source of §3.2;
    - carry propagation is real: load addresses are computed, and the CR
      statistic of Fig 11 is measured on them;
    - width-predictor accuracy emerges from the per-static width characters
      ([Stable_narrow] / [Stable_wide] / [Mixed]) rather than being wired.

    Profile knobs that cannot emerge (carry locality of immediate-offset
    address arithmetic) are enforced constructively: the offset of an
    immediate-indexed load is drawn so that the low-byte addition carries
    exactly when the profile says it should. Register-indexed loads
    (Fig 10's [R2+R3] shape) take whatever the producing uop left in the
    index register. *)

type state
(** Generator state: static program, register values, recency ring. *)

val create : Profile.t -> state
(** Builds the static program from the profile's seed. Deterministic. *)

val next : state -> Hc_isa.Uop.t
(** Produce the next dynamic uop and advance the machine state. *)

val generate : ?length:int -> Profile.t -> Trace.t
(** [generate ~length p] materializes a fresh trace of [length] (default
    [50_000]) uops starting from reset state. *)

val generate_sliced : ?length:int -> Profile.t -> Trace.t
(** Paper methodology (§3.1): skip the initialization section. We generate
    [3/7 * length] warm-up uops (three of ten slices, with seven kept),
    discard them, and return the next [length] uops. *)
