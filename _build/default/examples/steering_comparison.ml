(* Walk the paper's whole steering-policy stack over the SPEC Int suite and
   print the incremental picture: speedup, steered fraction, copies, fatal
   mispredictions per scheme.

     dune exec examples/steering_comparison.exe [length]

   This is the paper's section 3 in one table: each row adds one technique
   on top of everything before it. *)

module Profile = Hc_trace.Profile
module Generator = Hc_trace.Generator
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics
module Table = Hc_stats.Table
module Summary = Hc_stats.Summary

let () =
  let length =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 15_000
  in
  let traces =
    List.map (fun p -> Generator.generate_sliced ~length p) Profile.spec_int
  in
  let run scheme trace =
    let cfg = Config.with_scheme Config.default (Config.find_scheme scheme) in
    Pipeline.run ~cfg ~decide:Hc_steering.Policy.decide ~scheme_name:scheme trace
  in
  let baselines = List.map (run "baseline") traces in
  let table =
    Table.create
      [ "scheme"; "speedup (%)"; "steered (%)"; "copies (%)"; "fatal (%)" ]
  in
  List.iter
    (fun (scheme, _) ->
      if scheme <> "baseline" then begin
        let results = List.map (run scheme) traces in
        let mean f = Summary.arithmetic_mean (List.map f results) in
        let speed =
          Summary.arithmetic_mean
            (List.map2 (fun b m -> Metrics.speedup_pct ~baseline:b m) baselines
               results)
        in
        Table.add_row table
          [ scheme;
            Printf.sprintf "%+.2f" speed;
            Printf.sprintf "%.1f" (mean Metrics.steered_pct);
            Printf.sprintf "%.1f" (mean Metrics.copy_pct);
            Printf.sprintf "%.2f" (mean Metrics.wpred_fatal_pct) ]
      end)
    Hc_steering.Policy.stack;
  Printf.printf "SPEC Int 2000, %d uops per benchmark, averages over 12 apps\n\n"
    length;
  Table.print table
