(* Quickstart: simulate one benchmark with and without the helper cluster.

     dune exec examples/quickstart.exe

   This is the smallest end-to-end use of the library: pick a workload
   profile, expand it into a trace, run the monolithic baseline and the
   full helper-cluster configuration, and compare. *)

module Profile = Hc_trace.Profile
module Generator = Hc_trace.Generator
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics
module Model = Hc_power.Model

let () =
  (* 1. a workload: the gcc personality from SPEC Int 2000, expanded into
     30k uops with the paper's warm-up slicing *)
  let profile = Profile.find_spec_int "gcc" in
  let trace = Generator.generate_sliced ~length:30_000 profile in
  Format.printf "workload: %a@.@." Hc_trace.Trace.pp_summary trace;

  (* 2. the monolithic 32-bit baseline (Table 1) *)
  let baseline =
    Pipeline.run ~cfg:Config.baseline ~decide:Hc_steering.Policy.decide
      ~scheme_name:"baseline" trace
  in

  (* 3. the same machine plus the 8-bit helper cluster, full technique
     stack (8_8_8 + BR + LR + CR + CP + IR) *)
  let helper =
    Pipeline.run
      ~cfg:(Config.with_scheme Config.default (Config.find_scheme "+IR"))
      ~decide:Hc_steering.Policy.decide ~scheme_name:"+IR" trace
  in

  Format.printf "baseline: %a@.@." Metrics.pp baseline;
  Format.printf "helper:   %a@.@." Metrics.pp helper;
  Format.printf "speedup:            %+.2f%%@."
    (Metrics.speedup_pct ~baseline helper);
  Format.printf "energy-delay^2:     %+.2f%% vs baseline@."
    (Model.ed2_improvement_pct ~baseline helper)
