(* Study the NREADY workload-imbalance metric of section 3.7 across
   machine shapes and steering schemes.

     dune exec examples/imbalance_study.exe

   The paper's IR argument rests on a persistent wide-to-narrow imbalance
   (ready instructions stalling in the wide scheduler while the helper has
   idle slots). This example shows (a) how that imbalance builds up along
   the steering stack, and (b) how it reacts to the wide scheduler's size
   and issue width - the machine-shape sensitivity that decides whether
   instruction splitting can pay. *)

module Profile = Hc_trace.Profile
module Generator = Hc_trace.Generator
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics
module Table = Hc_stats.Table
module Summary = Hc_stats.Summary

let traces =
  lazy (List.map (fun p -> Generator.generate_sliced ~length:10_000 p) Profile.spec_int)

let averages cfg scheme_name =
  let results =
    List.map
      (fun tr ->
        Pipeline.run ~cfg ~decide:Hc_steering.Policy.decide ~scheme_name tr)
      (Lazy.force traces)
  in
  let mean f = Summary.arithmetic_mean (List.map f results) in
  ( mean Metrics.imbalance_w2n_pct,
    mean Metrics.imbalance_n2w_pct,
    mean (fun m -> float_of_int m.Metrics.split_uops) )

let () =
  print_endline "NREADY imbalance along the steering stack (SPEC averages):\n";
  let table =
    Table.create [ "scheme"; "w2n (%)"; "n2w (%)"; "splits/app" ]
  in
  List.iter
    (fun (name, scheme) ->
      if name <> "baseline" then begin
        let cfg = Config.with_scheme Config.default scheme in
        let w2n, n2w, splits = averages cfg name in
        Table.add_row table
          [ name; Printf.sprintf "%.1f" w2n; Printf.sprintf "%.1f" n2w;
            Printf.sprintf "%.0f" splits ]
      end)
    Hc_steering.Policy.stack;
  Table.print table;

  print_endline
    "\nSensitivity of the pre-IR imbalance to the wide backend's shape (+CP):\n";
  let table =
    Table.create [ "machine"; "w2n (%)"; "n2w (%)" ]
  in
  let base_cp = Config.with_scheme Config.default (Config.find_scheme "+CP") in
  List.iter
    (fun (label, cfg) ->
      let w2n, n2w, _ = averages cfg "+CP" in
      Table.add_row table
        [ label; Printf.sprintf "%.1f" w2n; Printf.sprintf "%.1f" n2w ])
    [
      ("Table-1 machine (3-issue, 32-entry IQ)", base_cp);
      ("2-issue wide backend", { base_cp with Config.issue_width = 2 });
      ("16-entry wide scheduler", { base_cp with Config.iq_size = 16 });
      ("4-issue wide backend", { base_cp with Config.issue_width = 4 });
    ];
  Table.print table;
  print_endline
    "\nThe tighter the wide backend, the larger the wide-to-narrow imbalance\n\
     - and the more instruction splitting (IR) has to work with."
