examples/width_profiling.ml: Hc_stats Hc_trace List Printf String Sys
