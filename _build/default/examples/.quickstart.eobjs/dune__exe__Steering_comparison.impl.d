examples/steering_comparison.ml: Array Hc_sim Hc_stats Hc_steering Hc_trace List Printf Sys
