examples/steering_comparison.mli:
