examples/custom_workload.ml: Hc_sim Hc_steering Hc_trace Printf
