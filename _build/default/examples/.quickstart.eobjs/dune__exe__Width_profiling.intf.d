examples/width_profiling.mli:
