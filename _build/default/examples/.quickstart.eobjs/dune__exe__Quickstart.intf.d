examples/quickstart.mli:
