examples/quickstart.ml: Format Hc_power Hc_sim Hc_steering Hc_trace
