examples/imbalance_study.mli:
