examples/imbalance_study.ml: Hc_sim Hc_stats Hc_steering Hc_trace Lazy List Printf
