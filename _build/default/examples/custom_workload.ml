(* Define a workload profile from scratch and evaluate how much an 8-bit
   helper cluster would buy it.

     dune exec examples/custom_workload.exe

   The profile below sketches a byte-oriented packet-filter style
   workload: very narrow value chains, regular control, hot small loops -
   exactly the code the helper cluster was designed for - and a second,
   pointer-chasing profile that should gain almost nothing. *)

module Profile = Hc_trace.Profile
module Generator = Hc_trace.Generator
module Analysis = Hc_trace.Analysis
module Config = Hc_sim.Config
module Pipeline = Hc_sim.Pipeline
module Metrics = Hc_sim.Metrics

let packet_filter =
  { (Profile.archetype Profile.Kernels) with
    Profile.name = "packet-filter";
    seed = 0xCAFE_0001L;
    static_size = 1500;
    f_load = 0.30;
    f_store = 0.08;
    f_cond_branch = 0.06;
    f_fp = 0.02;
    f_shift = 0.10;
    p_extra_operand = 0.10;
    p_narrow_load = 0.92;
    p_narrow_chain = 0.88;
    p_carry_local_load = 0.90;
    p_taken = 0.85;
    p_mispredict = 0.015 }

let pointer_chaser =
  { (Profile.archetype Profile.Office) with
    Profile.name = "pointer-chaser";
    seed = 0xCAFE_0002L;
    f_load = 0.34;
    p_narrow_load = 0.25;
    p_narrow_chain = 0.15;
    p_carry_local_load = 0.30;
    p_dl0_miss = 0.15;
    p_ul1_miss = 0.40 }

let evaluate profile =
  ( match Profile.validate profile with
  | Ok () -> ()
  | Error msg -> failwith msg );
  let trace = Generator.generate_sliced ~length:20_000 profile in
  let run scheme =
    let cfg = Config.with_scheme Config.default (Config.find_scheme scheme) in
    Pipeline.run ~cfg ~decide:Hc_steering.Policy.decide ~scheme_name:scheme trace
  in
  let baseline = run "baseline" in
  let helper = run "+IR" in
  Printf.printf "%-16s narrow-dep=%5.1f%%  steered=%5.1f%%  copies=%4.1f%%  speedup=%+.2f%%\n"
    profile.Profile.name
    (Analysis.narrow_dependence_pct trace)
    (Metrics.steered_pct helper) (Metrics.copy_pct helper)
    (Metrics.speedup_pct ~baseline helper)

let () =
  print_endline "helper-cluster value for two hand-written workload profiles:\n";
  evaluate packet_filter;
  evaluate pointer_chaser;
  print_endline
    "\nThe byte-crunching kernel keeps its chains in the 2x-clocked helper;\n\
     the pointer chaser is memory-bound and width-hostile, so the helper\n\
     cluster cannot buy it anything."
