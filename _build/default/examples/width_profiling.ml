(* Width-profile a workload without running the simulator.

   Reproduces the paper's workload-characterization artifacts on any
   profile: Fig 1 (narrow data-width dependence of register operands), the
   §1 operand-width mix, Fig 11 (carry-not-propagated potential) and Fig 13
   (producer-consumer distance). Run with:

     dune exec examples/width_profiling.exe [benchmark]

   where [benchmark] is a SPEC Int 2000 name (default: all twelve). *)

module Profile = Hc_trace.Profile
module Generator = Hc_trace.Generator
module Analysis = Hc_trace.Analysis
module Table = Hc_stats.Table

let profile_one table p =
  let trace = Generator.generate_sliced ~length:30_000 p in
  let mix = Analysis.operand_mix trace in
  Table.add_row table
    [
      p.Profile.name;
      Printf.sprintf "%.1f" (Analysis.narrow_dependence_pct trace);
      Printf.sprintf "%.1f" mix.Analysis.one_narrow;
      Printf.sprintf "%.1f" mix.Analysis.two_narrow_wide_result;
      Printf.sprintf "%.1f" mix.Analysis.two_narrow_narrow_result;
      Printf.sprintf "%.1f" (Analysis.carry_not_propagated_pct trace ~arith:true);
      Printf.sprintf "%.1f" (Analysis.carry_not_propagated_pct trace ~arith:false);
      Printf.sprintf "%.2f" (Analysis.mean_distance trace);
    ]

let () =
  let requested =
    match Sys.argv with
    | [| _ |] -> Profile.spec_int
    | [| _; name |] -> (
      try [ Profile.find_spec_int name ]
      with Not_found ->
        Printf.eprintf "unknown benchmark %S; known: %s\n" name
          (String.concat ", " Profile.spec_int_names);
        exit 1)
    | _ ->
      Printf.eprintf "usage: width_profiling [benchmark]\n";
      exit 1
  in
  let table =
    Table.create
      [ "benchmark"; "narrow-dep%"; "1-narrow%"; "2n-wide%"; "2n-narrow%";
        "carry-local arith%"; "carry-local load%"; "dep-dist" ]
  in
  List.iter (profile_one table) requested;
  Table.print table
